// bench_serve_traffic — the serving-layer characterization: one mixed-
// scenario, multi-tenant workload replayed through ReconService under each
// scheduling policy (FIFO / priority / weighted fair share), then swept
// across shared-tier shard counts ({1,2,4} at the FIFO policy).
//
// Reports per policy: completion/rejection/deadline counts, queue-wait and
// turnaround percentiles (virtual time), slot utilization, the cross-job
// memo hit rate (lookups served by the shared tier — the paper's reuse
// economics across *jobs* instead of across iterations), and the shared
// tier's promotion split (accepted / dedup drops / cap drops). The shard
// sweep reports per shard count the fabric's charged fetch/promotion time
// and uplink contention wait. Exits non-zero if any job's output
// fingerprint differs between policies OR between shard counts: the
// hermetic-session + placement-only-sharding guarantees this layer is built
// on, also asserted by tests/serve_test.cpp, so the CI smoke run
// (`--jobs 8 --n small`) exercises both end to end.
//
// Knobs: `--shards N` (tier shard count for the policy table),
// `--fabric-gbps G` (link AND uplink bandwidth; 0 disables the fabric —
// legacy network-isolated sessions), `--tau-dedup T` (promotion
// near-duplicate threshold; 0 keeps everything), `--transport T` (inproc |
// loopback | socket — how sessions reach the shared tier; socket serves the
// whole workload over localhost TCP and must reproduce the inproc outputs
// bit-for-bit). A transport cross-check always replays the FIFO point on a
// second transport and feeds it into the same output-identity gate.
//
// Chaos mode (`--chaos kill-tier-at-job=N | blip-tier-at-job=N`, socket
// transport only) replays the FIFO point once more against a bench-owned
// TCP tier server that is killed at the Nth dispatch and later restarted
// from its snapshot on the same port. The "kill" flavor holds the outage
// past the reconnect budget and gates on exactly-one failed job, cold
// (degraded) sessions for the in-between dispatches, and a service-level
// reconnect; the "blip" flavor restarts within the budget and gates on
// zero failed jobs plus at least one transport reconnect + idempotent
// replay. Both gate on surviving seeded jobs staying bit-identical to the
// fault-free baseline and fold into the exit code.
//
// Deadline-aware serving (docs/serving.md "Admission and preemption"):
// `--preempt` replays the FIFO point with stage-boundary preemption on
// (quantum auto-derived as half the baseline's median run_vtime, or
// `--preempt-quantum S`) and feeds the preempted outputs into the same
// bit-identity gate — preemption is schedule-shaped only, so the gate and
// at least one observed preemption fold into the exit code. `--admission
// reject|downgrade|both` replays the FIFO point under deadline admission
// and records admitted/rejected/downgraded counts plus the deadline hit
// rate among admitted. `--slot-sweep` replays FIFO at 1/2/4 slots (with
// admission + preemption when enabled) — the capacity dimension of the
// deadline story. `--scaled N` generates scaled_workload(N): a
// heavy-tailed, bursty + diurnal, SLO-classed trace of N jobs replayed
// through the full admission + preemption stack with per-SLO-class
// outcome rows (its job ids collide with the base trace's, so it stays
// out of the identity gate).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#ifdef MLR_HAS_NET
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "net/request_table.hpp"
#include "net/tier_server.hpp"
#include "net/wire.hpp"
#endif

namespace {

using namespace mlr;
using namespace mlr::serve;

i64 parse_n(const char* s) {
  if (std::strcmp(s, "small") == 0) return 12;
  if (std::strcmp(s, "medium") == 0) return 16;
  if (std::strcmp(s, "large") == 0) return 20;
  return std::atoll(s);
}

const char* transport_name(TierTransport t) {
  switch (t) {
    case TierTransport::Inproc: return "inproc";
    case TierTransport::Loopback: return "loopback";
    case TierTransport::Socket: return "socket";
  }
  return "?";
}

TierTransport parse_transport(const char* s) {
  if (std::strcmp(s, "inproc") == 0) return TierTransport::Inproc;
  if (std::strcmp(s, "loopback") == 0) return TierTransport::Loopback;
  if (std::strcmp(s, "socket") == 0) return TierTransport::Socket;
  std::fprintf(stderr, "unknown --transport %s (inproc|loopback|socket)\n", s);
  std::exit(2);
}

struct PolicyResult {
  std::string name;
  int shards = 1;
  int slots = 0;  ///< slot count this replay ran with
  TierTransport transport = TierTransport::Inproc;
  ServiceStats stats;
  std::map<u64, u64> fingerprints;
  std::vector<JobStats> job_stats;  ///< full per-job records from drain()
  double contention_s = 0;  ///< uplink queueing behind other sessions
  std::size_t tier_entries = 0;
  std::vector<std::size_t> shard_entries;
};

/// Per-replay overrides for the deadline-aware replays: slot count,
/// admission mode, preemption quantum, and (for --scaled) a different
/// trace + priming set. Zero/null fields fall back to the bench defaults.
struct RunOpts {
  int slots = 0;
  AdmissionMode admission = AdmissionMode::None;
  double quantum = 0;
  const std::vector<JobRequest>* traffic = nullptr;
  const std::vector<JobRequest>* warm = nullptr;
};

/// p-th percentile of an unsorted sample (sorts in place; 0 when empty).
double pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, std::size_t(p * double(v.size())))];
}

double deadline_hit_rate(const ServiceStats& st) {
  return st.completed > 0
             ? double(st.completed - st.deadline_missed) / double(st.completed)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  WallTimer wall;

  const i64 n = parse_n(args.get_str("--n", "small"));
  const i64 jobs = args.get_i64("--jobs", 32);
  const int slots = int(args.get_i64("--slots", 2));
  const int gpus_per_job = int(args.get_i64("--gpus-per-job", 1));
  const int iters_cap = int(args.get_i64("--iters-cap", 3));
  const double interarrival = args.get_double("--interarrival", 60.0);
  const bool bursty = args.has("--bursty");
  const double slack = args.get_double("--deadline-slack", 2500.0);
  const u64 seed = u64(args.get_i64("--seed", 7));
  const int shards = int(args.get_i64("--shards", 1));
  const double fabric_gbps = args.get_double("--fabric-gbps", 200.0);
  const double tau_dedup = args.get_double("--tau-dedup", 0.999);
  const TierTransport transport =
      parse_transport(args.get_str("--transport", "inproc"));
  // --trace <path>: record the first (FIFO) replay with the obs trace
  // recorder and write a Chrome-trace/Perfetto JSON there. Recording is
  // enable-only and read-only, so the traced run stays in the output
  // identity gate with the untraced ones.
  const char* trace_path = args.get_str("--trace", nullptr);
  // Deadline-aware serving knobs (see the header comment): --preempt /
  // --preempt-quantum, --admission MODE, --slot-sweep, --scaled N.
  const bool preempt = args.has("--preempt");
  const double preempt_quantum_arg = args.get_double("--preempt-quantum", 0.0);
  const char* admission_arg = args.get_str("--admission", "off");
  const bool slot_sweep_on = args.has("--slot-sweep");
  const i64 scaled_jobs = args.get_i64("--scaled", 0);
  std::vector<AdmissionMode> adm_modes;
  if (std::strcmp(admission_arg, "reject") == 0) {
    adm_modes = {AdmissionMode::Reject};
  } else if (std::strcmp(admission_arg, "downgrade") == 0) {
    adm_modes = {AdmissionMode::Downgrade};
  } else if (std::strcmp(admission_arg, "both") == 0) {
    adm_modes = {AdmissionMode::Reject, AdmissionMode::Downgrade};
  } else if (std::strcmp(admission_arg, "off") != 0) {
    std::fprintf(stderr, "unknown --admission %s (off|reject|downgrade|both)\n",
                 admission_arg);
    return 2;
  }
  if ((preempt || scaled_jobs > 0) && args.get_i64("--gpus-per-job", 1) != 1) {
    std::fprintf(stderr,
                 "--preempt/--scaled require --gpus-per-job 1 (stage-boundary "
                 "preemption yields one slot at a time)\n");
    return 2;
  }
  // --chaos kill-tier-at-job=N | blip-tier-at-job=N: fault-injection mode,
  // socket transport only. Both kill the bench-owned TCP tier server at the
  // Nth dispatch of a dedicated chaos replay. "kill" leaves it down until
  // --chaos-restart-after further dispatches have gone by: the struck job
  // exhausts its reconnect budget and fails, the in-between jobs run as
  // degraded cold sessions, and the service re-ships their buffered
  // promotions on recovery. "blip" restarts the server from a side thread
  // after --chaos-blip-ms, inside the reconnect budget: the transport's own
  // reconnect + idempotent replay absorbs the outage and NO job fails.
  // --retry-max / --backoff-ms size the reconnect budget (defaults differ
  // per flavor: kill wants the budget to die fast, blip wants the backoff
  // schedule to cover the restart window).
  const char* chaos = args.get_str("--chaos", nullptr);
  bool chaos_blip = false;
  i64 chaos_at = 0;
  if (chaos != nullptr) {
    const char* kKill = "kill-tier-at-job=";
    const char* kBlip = "blip-tier-at-job=";
    if (std::strncmp(chaos, kKill, std::strlen(kKill)) == 0) {
      chaos_at = std::atoll(chaos + std::strlen(kKill));
    } else if (std::strncmp(chaos, kBlip, std::strlen(kBlip)) == 0) {
      chaos_at = std::atoll(chaos + std::strlen(kBlip));
      chaos_blip = true;
    } else {
      std::fprintf(
          stderr,
          "unknown --chaos %s (kill-tier-at-job=N | blip-tier-at-job=N)\n",
          chaos);
      return 2;
    }
    if (transport != TierTransport::Socket || chaos_at < 1) {
      std::fprintf(stderr, "--chaos requires --transport socket and N >= 1\n");
      return 2;
    }
  }
  const i64 chaos_restart_after = args.get_i64("--chaos-restart-after", 3);
  const double chaos_blip_ms = args.get_double("--chaos-blip-ms", 50.0);
  const int retry_max = int(args.get_i64("--retry-max", chaos_blip ? 6 : 3));
  const double backoff_ms =
      args.get_double("--backoff-ms", chaos_blip ? 25.0 : 5.0);

#ifndef MLR_HAS_NET
  if (transport != TierTransport::Inproc) {
    std::printf("SKIP: built with MLR_BUILD_NET=OFF, --transport %s "
                "unavailable\n",
                transport_name(transport));
    return 0;
  }
#endif

  bench::header(
      "serve: multi-tenant traffic through ReconService, per policy + shard "
      "sweep",
      "north star: serving heavy traffic; paper §4 reuse economics across jobs",
      "fair-share evens tenant waits; cross-job hits well above 0; outputs "
      "identical for every policy and shard count");
  std::printf(
      "workload: %lld jobs, n=%lld^3, %d slot(s) x %d gpu(s), mean "
      "interarrival %.0f s%s, 3 tenants (weights 1/2/4)\n"
      "shared tier: %d shard(s), fabric %.0f Gb/s%s, tau_dedup %.3f\n",
      (long long)jobs, (long long)n, slots, gpus_per_job, interarrival,
      bursty ? ", bursty x4" : " (Poisson)", shards, fabric_gbps,
      fabric_gbps <= 0 ? " (disabled: network-isolated sessions)" : "",
      tau_dedup);
  std::printf("tier transport: %s\n\n", transport_name(transport));

  WorkloadConfig wc;
  wc.seed = seed;
  wc.jobs = std::size_t(jobs);
  wc.mean_interarrival = interarrival;
  wc.bursty = bursty;
  wc.deadline_slack = slack;
  wc.tenants = {{"bronze", 1.0, 1, 2.0},   // bulk of the traffic, low weight
                {"silver", 2.0, 2, 1.0},
                {"gold", 4.0, 3, 0.5}};    // sparse but heavily weighted
  WorkloadGenerator gen(wc);
  const auto traffic = gen.generate();
  const auto warm = gen.priming_set();

  auto run_once = [&](SchedulerPolicy policy, int shard_count, TierTransport tr,
                      const char* trace = nullptr, RunOpts opts = {}) {
    ServiceConfig sc;
    if (trace != nullptr) sc.trace_path = trace;
    sc.n = n;
    sc.slots = opts.slots > 0 ? opts.slots : slots;
    sc.gpus_per_job = gpus_per_job;
    sc.threads = args.threads();
    sc.overlap_slices = args.overlap();
    sc.pipeline_depth = args.pipeline();
    sc.iters_cap = iters_cap;
    sc.policy = policy;
    sc.shard_count = shard_count;
    sc.tau_dedup = tau_dedup;
    sc.transport = tr;
    sc.admission = opts.admission;
    sc.preempt_quantum_s = opts.quantum;
    sc.fabric.enabled = fabric_gbps > 0;
    if (fabric_gbps > 0) {
      sc.fabric.link_bandwidth = fabric_gbps * 1e9 / 8.0;
      sc.fabric.uplink_bandwidth = fabric_gbps * 1e9 / 8.0;
    }
    ReconService svc(sc);
    svc.prime(opts.warm != nullptr ? *opts.warm : warm);
    for (const auto& j : (opts.traffic != nullptr ? *opts.traffic : traffic))
      svc.submit(j);
    PolicyResult pr;
    pr.name = policy_name(policy);
    pr.shards = shard_count;
    pr.slots = sc.slots;
    pr.transport = tr;
    pr.job_stats = svc.drain();
    for (const auto& st : pr.job_stats)
      if (st.admitted) pr.fingerprints[st.id] = st.output_fingerprint;
    pr.stats = svc.stats();
    pr.contention_s = svc.tier().fabric().contention_wait_s();
    pr.tier_entries = svc.shared_entries();
    for (int s = 0; s < shard_count; ++s)
      pr.shard_entries.push_back(svc.tier().shard_entries(s));
    return pr;
  };

#ifdef MLR_HAS_NET
  if (transport == TierTransport::Socket) {
    // Availability probe: a sandbox without sockets (or no loopback
    // interface) should skip rather than fail the smoke run. One throwaway
    // service exercises listen + connect end to end.
    try {
      ServiceConfig probe;
      probe.n = 8;
      probe.transport = TierTransport::Socket;
      ReconService svc(probe);
    } catch (const mlr::net::NetError& e) {
      std::printf("SKIP: socket transport unavailable (%s)\n", e.what());
      return 0;
    }
  }
#endif

  const SchedulerPolicy policies[] = {SchedulerPolicy::Fifo,
                                      SchedulerPolicy::Priority,
                                      SchedulerPolicy::FairShare};
  std::vector<PolicyResult> results;
  for (const auto policy : policies)
    results.push_back(run_once(
        policy, shards, transport,
        policy == SchedulerPolicy::Fifo ? trace_path : nullptr));
  if (trace_path != nullptr)
    std::printf("[trace written to %s]\n\n", trace_path);

  std::printf("%-9s %5s %4s %5s | %24s | %24s | %5s %6s\n", "policy", "done",
              "rej", "ddl%", "queue wait p50/p90/p99 (s)",
              "turnaround p50/p90/p99 (s)", "util%", "xjob%");
  for (const auto& pr : results) {
    const auto& st = pr.stats;
    const auto qw = summarize(st.queue_wait);
    const auto ta = summarize(st.turnaround);
    const double ddl =
        st.completed > 0
            ? 100.0 * double(st.completed - st.deadline_missed) /
                  double(st.completed)
            : 0.0;
    std::printf(
        "%-9s %5llu %4llu %5.0f | %7.0f %7.0f %8.0f | %7.0f %7.0f %8.0f | "
        "%5.0f %6.1f\n",
        pr.name.c_str(), (unsigned long long)st.completed,
        (unsigned long long)st.rejected, ddl, qw.p50, qw.p90, qw.p99, ta.p50,
        ta.p90, ta.p99, 100.0 * st.utilization(slots),
        100.0 * st.cross_job_hit_rate());
  }

  std::printf("\nper-tenant busy share under %s (weights 1/2/4):\n",
              results.back().name.c_str());
  const auto& fair = results.back().stats;
  for (const auto& [tenant, ts] : fair.tenants) {
    std::printf("  %-8s jobs=%3llu  busy=%8.0f s  wait p50=%7.0f s\n",
                tenant.c_str(), (unsigned long long)ts.jobs, ts.busy_s,
                ts.queue_wait.count() > 0 ? ts.queue_wait.percentile(0.5)
                                          : 0.0);
  }

  // Shard sweep at the FIFO policy: sharding decides placement (which link
  // carries which bytes), never session contents, so outputs must stay
  // bit-identical while the per-link occupancy changes shape. The fabric
  // observables (fetch/promotion seconds, uplink contention) are the new
  // serving dimension this records.
  std::printf("\nshard sweep (fifo, fabric %.0f Gb/s):\n", fabric_gbps);
  std::printf("%7s %9s %10s %11s %12s %6s | per-shard entries\n", "shards",
              "tier", "fetch(s)", "promote(s)", "contention(s)", "xjob%");
  std::vector<PolicyResult> sweep;
  for (const int sc2 : {1, 2, 4}) {
    // The policy table already ran FIFO at --shards: reuse that run instead
    // of replaying the whole workload for a bit-identical result.
    auto pr = sc2 == shards ? results[0]
                            : run_once(SchedulerPolicy::Fifo, sc2, transport);
    std::printf("%7d %9zu %10.1f %11.3f %13.1f %6.1f |", sc2,
                pr.tier_entries, pr.stats.fabric_fetch_s,
                pr.stats.fabric_promote_s, pr.contention_s,
                100.0 * pr.stats.cross_job_hit_rate());
    for (const auto se : pr.shard_entries) std::printf(" %zu", se);
    std::printf("\n");
    sweep.push_back(std::move(pr));
  }

  // Transport cross-check: replay the FIFO point on a second carrier and
  // feed it into the same identity gate. The tier backend moves bytes, not
  // decisions — outputs must be bit-identical whether the tier is a local
  // object, wire frames over loopback, or a TCP server.
  std::vector<PolicyResult> xruns;
  xruns.push_back(results[0]);  // the selected transport's FIFO point
#ifdef MLR_HAS_NET
  {
    const TierTransport other = transport == TierTransport::Inproc
                                    ? TierTransport::Loopback
                                    : TierTransport::Inproc;
    xruns.push_back(run_once(SchedulerPolicy::Fifo, shards, other));
  }
#endif
  std::printf("\ntransport cross-check (fifo, %d shard(s)):\n", shards);
  std::printf("%9s %9s %10s %11s %6s %6s\n", "transport", "tier", "fetch(s)",
              "promote(s)", "xjob%", "ddl%");
  for (const auto& pr : xruns)
    std::printf("%9s %9zu %10.1f %11.3f %6.1f %6.1f\n",
                transport_name(pr.transport), pr.tier_entries,
                pr.stats.fabric_fetch_s, pr.stats.fabric_promote_s,
                100.0 * pr.stats.cross_job_hit_rate(),
                100.0 * deadline_hit_rate(pr.stats));

  // Preemption replay: same trace, FIFO, stage-boundary preemption on.
  // Preemption is schedule-shaped only — the preempted run's outputs,
  // fingerprints and run vtimes must be bit-identical to the uninterrupted
  // baseline (fed into the identity gate below), and under a quantum of
  // half the baseline's median run_vtime on a contended queue at least one
  // job must actually have yielded, or the smoke proves nothing.
  std::vector<PolicyResult> preempt_runs;
  bool preempt_ok = true;
  double quantum = preempt_quantum_arg;
  if (preempt) {
    if (quantum <= 0) {
      std::vector<double> rv;
      for (const auto& st : results[0].job_stats)
        if (st.outcome == JobOutcome::Completed) rv.push_back(st.run_vtime);
      quantum = rv.empty() ? 1.0 : pct(rv, 0.5) / 2.0;
    }
    RunOpts o;
    o.quantum = quantum;
    preempt_runs.push_back(
        run_once(SchedulerPolicy::Fifo, shards, transport, nullptr, o));
    const auto& pr = preempt_runs.back();
    const auto ta = summarize(pr.stats.turnaround);
    const auto ta0 = summarize(results[0].stats.turnaround);
    preempt_ok = pr.stats.preemptions > 0;
    std::printf(
        "\npreemption (fifo, quantum %.0f s): %llu preemptions, done %llu, "
        "ddl%% %.0f, turnaround p50/p99 %.0f/%.0f s (baseline %.0f/%.0f)\n",
        quantum, (unsigned long long)pr.stats.preemptions,
        (unsigned long long)pr.stats.completed,
        100.0 * deadline_hit_rate(pr.stats), ta.p50, ta.p99, ta0.p50, ta0.p99);
    if (!preempt_ok)
      std::printf("  preemption smoke: NO preemption observed (quantum too "
                  "coarse for this trace?)\n");
  }

  // Admission replays: same trace, FIFO, deadline admission on. Rejected
  // jobs never reach a slot (serve_test pins that they charge nothing);
  // admitted jobs must stay bit-identical to the baseline, so these runs
  // feed the identity gate too.
  std::vector<PolicyResult> adm_runs;
  if (!adm_modes.empty()) {
    std::printf("\nadmission (fifo):\n");
    std::printf("%10s %5s %4s %4s %5s %5s | %24s\n", "mode", "adm", "rej",
                "down", "done", "ddl%", "turnaround p50/p99 (s)");
    for (const auto mode : adm_modes) {
      RunOpts o;
      o.admission = mode;
      if (preempt) o.quantum = quantum;
      adm_runs.push_back(
          run_once(SchedulerPolicy::Fifo, shards, transport, nullptr, o));
      const auto& pr = adm_runs.back();
      u64 admitted = 0;
      for (const auto& st : pr.job_stats) admitted += st.admitted ? 1 : 0;
      const auto ta = summarize(pr.stats.turnaround);
      std::printf("%10s %5llu %4llu %4llu %5llu %5.0f | %9.0f %9.0f\n",
                  admission_mode_name(mode), (unsigned long long)admitted,
                  (unsigned long long)pr.stats.admission_rejected,
                  (unsigned long long)pr.stats.admission_downgraded,
                  (unsigned long long)pr.stats.completed,
                  100.0 * deadline_hit_rate(pr.stats), ta.p50, ta.p99);
    }
  }

  // Slot sweep: the capacity dimension of the deadline story. More slots →
  // shorter queues → higher deadline hit rate among admitted (and fewer
  // admission rejects, since the admission model books per-slot finish
  // estimates). Outputs stay bit-identical: slots place jobs, sessions stay
  // hermetic.
  std::vector<PolicyResult> slot_runs;
  if (slot_sweep_on) {
    std::printf("\nslot sweep (fifo%s%s):\n",
                !adm_modes.empty() ? ", admission " : "",
                !adm_modes.empty() ? admission_mode_name(adm_modes[0]) : "");
    std::printf("%5s %5s %4s %7s %5s %5s %14s %10s\n", "slots", "done", "rej",
                "preempt", "ddl%", "util%", "p99 turn. (s)", "makespan");
    for (const int sl : {1, 2, 4}) {
      RunOpts o;
      o.slots = sl;
      if (preempt) o.quantum = quantum;
      if (!adm_modes.empty()) o.admission = adm_modes[0];
      slot_runs.push_back(
          run_once(SchedulerPolicy::Fifo, shards, transport, nullptr, o));
      const auto& pr = slot_runs.back();
      const auto ta = summarize(pr.stats.turnaround);
      std::printf("%5d %5llu %4llu %7llu %5.0f %5.0f %14.0f %10.0f\n", sl,
                  (unsigned long long)pr.stats.completed,
                  (unsigned long long)pr.stats.rejected,
                  (unsigned long long)pr.stats.preemptions,
                  100.0 * deadline_hit_rate(pr.stats),
                  100.0 * pr.stats.utilization(sl), ta.p99,
                  pr.stats.makespan);
    }
  }

  // Hermetic-session + placement-only-sharding + transport guarantees:
  // identical outputs under every policy, shard count, tier transport,
  // slot count, admission mode AND preemption schedule. The admitted *set*
  // can legitimately differ once admission control rejects (queue dynamics
  // are policy-dependent), so compare over the union: every job two or
  // more runs both ran must agree bit-for-bit.
  bool identical = true;
  std::map<u64, u64> agreed;
  for (const auto* set :
       {&results, &sweep, &xruns, &preempt_runs, &adm_runs, &slot_runs})
    for (const auto& pr : *set)
      for (const auto& [id, fp] : pr.fingerprints) {
        const auto [it, fresh] = agreed.emplace(id, fp);
        if (!fresh && it->second != fp) identical = false;
      }
  std::printf(
      "\noutput identity across policies, shard counts, transports, slots, "
      "admission and preemption: %s\n",
      identical ? "OK (bit-identical)" : "MISMATCH");
  std::printf(
      "shared tier (fifo): %llu promoted, %llu dedup drops (tau %.3f), "
      "%llu cap drops, cross-job hit rate %.1f%%\n",
      (unsigned long long)results[0].stats.promoted,
      (unsigned long long)results[0].stats.shared_dedup_drops, tau_dedup,
      (unsigned long long)results[0].stats.shared_cap_drops,
      100.0 * results[0].stats.cross_job_hit_rate());

  // Scaled workload: scaled_workload(N) — heavy-tailed scenario mix, bursty
  // + diurnally modulated arrivals, three tenants spanning the SLO classes —
  // replayed through the full admission + preemption stack. Its job ids
  // collide with the base trace's, so it reports outcomes (overall and per
  // SLO class) instead of joining the identity gate; the determinism of this
  // path is pinned by serve_test's preemption/admission matrices.
  std::vector<PolicyResult> scaled_runs;
  struct ClassAgg {
    u64 jobs = 0, completed = 0, rejected = 0, downgraded = 0, preempted = 0;
    u64 preemptions = 0, deadline_hits = 0;
    std::vector<double> turnaround;
  };
  std::map<int, ClassAgg> scaled_classes;
  if (scaled_jobs > 0) {
    const AdmissionMode smode =
        adm_modes.empty() ? AdmissionMode::Reject : adm_modes[0];
    auto swc = scaled_workload(std::size_t(scaled_jobs), seed);
    WorkloadGenerator sgen(swc);
    const auto straffic = sgen.generate();
    const auto swarm = sgen.priming_set();
    RunOpts o;
    o.traffic = &straffic;
    o.warm = &swarm;
    o.admission = smode;
    if (preempt) o.quantum = quantum;
    scaled_runs.push_back(
        run_once(SchedulerPolicy::Fifo, shards, transport, nullptr, o));
    const auto& pr = scaled_runs.back();
    for (const auto& st : pr.job_stats) {
      auto& agg = scaled_classes[int(st.slo)];
      ++agg.jobs;
      if (!st.admitted) {
        ++agg.rejected;
        continue;
      }
      agg.downgraded += st.downgraded ? 1 : 0;
      if (st.outcome != JobOutcome::Completed) continue;
      ++agg.completed;
      agg.preempted += st.preemptions > 0 ? 1 : 0;
      agg.preemptions += st.preemptions;
      agg.deadline_hits += st.deadline_met ? 1 : 0;
      agg.turnaround.push_back(st.turnaround());
    }
    std::printf(
        "\nscaled workload (%lld jobs, heavy-tailed + diurnal, admission "
        "%s%s):\n",
        (long long)scaled_jobs, admission_mode_name(smode),
        preempt ? ", preemption on" : "");
    std::printf("%12s %5s %5s %4s %4s %7s %5s | %24s\n", "class", "jobs",
                "done", "rej", "down", "preempt", "ddl%",
                "turnaround p50/p99 (s)");
    for (auto& [cls, agg] : scaled_classes) {
      const double ddl = agg.completed > 0
                             ? 100.0 * double(agg.deadline_hits) /
                                   double(agg.completed)
                             : 0.0;
      std::printf("%12s %5llu %5llu %4llu %4llu %7llu %5.0f | %9.0f %9.0f\n",
                  slo_class_name(SloClass(cls)), (unsigned long long)agg.jobs,
                  (unsigned long long)agg.completed,
                  (unsigned long long)agg.rejected,
                  (unsigned long long)agg.downgraded,
                  (unsigned long long)agg.preemptions, ddl,
                  pct(agg.turnaround, 0.5), pct(agg.turnaround, 0.99));
    }
    std::printf(
        "  totals: done %llu, rejected %llu, preemptions %llu, ddl%% %.0f "
        "(among admitted), makespan %.0f s, xjob hit %.1f%%\n",
        (unsigned long long)pr.stats.completed,
        (unsigned long long)pr.stats.rejected,
        (unsigned long long)pr.stats.preemptions,
        100.0 * deadline_hit_rate(pr.stats), pr.stats.makespan,
        100.0 * pr.stats.cross_job_hit_rate());
  }

  // Chaos replay: fault-inject the live TCP tier mid-drain and gate on the
  // recovery contract. The bench owns the TierServer here (instead of
  // letting the service spawn one) so the dispatch hook can kill it and
  // restart it — snapshot-restored, on the same port — mid-run.
  bool chaos_ok = true;
  bool chaos_identical = true;
  i64 chaos_failed = 0, chaos_degraded = 0, chaos_completed = 0;
  u64 chaos_reconnects = 0, chaos_replays = 0, chaos_retries = 0;
  double chaos_recovery_s = 0;
  double degraded_vtime_mean = 0, seeded_vtime_mean = 0;
#ifdef MLR_HAS_NET
  if (chaos != nullptr) {
    if (chaos_blip)
      std::printf(
          "\nchaos: blip tier at dispatch %lld, restart after %.0f ms "
          "(reconnect budget %d x %.0f ms)\n",
          (long long)chaos_at, chaos_blip_ms, retry_max, backoff_ms);
    else
      std::printf(
          "\nchaos: kill tier at dispatch %lld, restart %lld dispatches "
          "later (reconnect budget %d x %.0f ms)\n",
          (long long)chaos_at, (long long)chaos_restart_after, retry_max,
          backoff_ms);

    // Mirror the service's own remote-tier config so the external server is
    // indistinguishable from the one a fault-free run would spawn.
    serve::SharedTierConfig tc;
    tc.shard_count = shards;
    tc.max_entries = ServiceConfig{}.max_shared_entries;
    tc.tau_dedup = tau_dedup;
    tc.key_dim = memo::MemoConfig{}.key_dim;
    auto server = std::make_unique<net::TierServer>(tc);
    const std::uint16_t chaos_port = server->listen_and_serve();

    std::mutex srv_mu;  // hook thread vs blip restarter thread
    std::vector<memo::MemoDb::Entry> checkpoint;
    std::atomic<bool> restart_failed{false};
    auto restart_server = [&] {
      try {
        auto fresh = std::make_unique<net::TierServer>(tc);
        if (!checkpoint.empty()) {
          // Durable-tier semantics: the replacement comes back with the
          // killed server's last snapshot, shipped over the same wire path
          // sessions use (SNAPSHOT_IMPORT).
          net::WireWriter w;
          net::encode_entries(w, checkpoint, /*with_values=*/true);
          fresh->handle_frame(
              net::encode_frame(net::FrameType::SnapshotImport, 0, 1, w.data()));
        }
        fresh->listen_and_serve("127.0.0.1", chaos_port);
        std::lock_guard<std::mutex> lk(srv_mu);
        server = std::move(fresh);
      } catch (const std::exception& e) {
        restart_failed = true;
        std::fprintf(stderr, "chaos: tier restart failed: %s\n", e.what());
      }
    };
    std::thread blip_restarter;

    ServiceConfig sc;
    sc.n = n;
    sc.slots = slots;
    sc.gpus_per_job = gpus_per_job;
    sc.threads = args.threads();
    sc.overlap_slices = args.overlap();
    sc.pipeline_depth = args.pipeline();
    sc.iters_cap = iters_cap;
    sc.policy = SchedulerPolicy::Fifo;
    sc.shard_count = shards;
    sc.tau_dedup = tau_dedup;
    sc.transport = TierTransport::Socket;
    sc.tier_address = "127.0.0.1:" + std::to_string(chaos_port);
    sc.net_retry_max = retry_max;
    sc.net_backoff_ms = backoff_ms;
    sc.fabric.enabled = fabric_gbps > 0;
    if (fabric_gbps > 0) {
      sc.fabric.link_bandwidth = fabric_gbps * 1e9 / 8.0;
      sc.fabric.uplink_bandwidth = fabric_gbps * 1e9 / 8.0;
    }
    i64 dispatched = 0;
    sc.dispatch_hook = [&](const JobRequest&) {
      ++dispatched;
      if (dispatched == chaos_at) {
        checkpoint = server->tier().snapshot();
        {
          std::lock_guard<std::mutex> lk(srv_mu);
          server.reset();  // connection reset / refused from here on
        }
        if (chaos_blip)
          blip_restarter = std::thread([&] {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(chaos_blip_ms));
            restart_server();
          });
      } else if (!chaos_blip &&
                 dispatched == chaos_at + chaos_restart_after) {
        restart_server();  // in-hook: next recovery probe finds it up
      }
    };

    const auto before = obs::metrics().snapshot();
    ReconService svc(sc);
    svc.prime(warm);
    for (const auto& j : traffic) svc.submit(j);
    const auto res = svc.drain();
    if (blip_restarter.joinable()) blip_restarter.join();
    const auto after = obs::metrics().snapshot();
    chaos_reconnects = after.counter_value("net.client.reconnects") -
                       before.counter_value("net.client.reconnects");
    chaos_replays = after.counter_value("net.client.replays") -
                    before.counter_value("net.client.replays");
    chaos_retries = after.counter_value("net.table.retries") -
                    before.counter_value("net.table.retries");
    if (const auto* h = after.histogram("net.client.recovery_s")) {
      const auto* hb = before.histogram("net.client.recovery_s");
      chaos_recovery_s = h->sum - (hb != nullptr ? hb->sum : 0.0);
    }

    // Surviving seeded jobs must be bit-identical to the fault-free socket
    // FIFO baseline (results[0]). Degraded (cold) jobs legitimately differ —
    // they reconstruct without the shared seed — and failed jobs have no
    // output at all; both are excluded from the identity gate but counted
    // against the flavor's expectations below.
    double dsum = 0, ssum = 0;
    i64 dcount = 0, scount = 0;
    for (const auto& st : res) {
      if (!st.admitted) continue;
      if (st.outcome == JobOutcome::Failed) {
        ++chaos_failed;
        std::printf("  job %llu failed: %s\n", (unsigned long long)st.id,
                    st.failure.c_str());
        continue;
      }
      ++chaos_completed;
      if (st.degraded) {
        ++chaos_degraded;
        dsum += st.run_vtime;
        ++dcount;
        continue;
      }
      ssum += st.run_vtime;
      ++scount;
      const auto it = results[0].fingerprints.find(st.id);
      if (it != results[0].fingerprints.end() &&
          it->second != st.output_fingerprint)
        chaos_identical = false;
    }
    degraded_vtime_mean = dcount > 0 ? dsum / double(dcount) : 0.0;
    seeded_vtime_mean = scount > 0 ? ssum / double(scount) : 0.0;

    if (chaos_blip) {
      // The outage fits inside the reconnect budget: nobody fails, nobody
      // degrades, and at least one stashed read was replayed post-reconnect.
      chaos_ok = chaos_failed == 0 && chaos_degraded == 0 &&
                 chaos_reconnects >= 1 && chaos_replays >= 1 &&
                 !restart_failed;
    } else {
      // Exactly the struck job fails; the dispatches between kill and
      // restart run cold; the recovery probe reconnects the client.
      chaos_ok = chaos_failed == 1 &&
                 chaos_degraded == chaos_restart_after - 1 &&
                 chaos_reconnects >= 1 && !restart_failed;
    }
    chaos_ok = chaos_ok && chaos_identical;

    std::printf(
        "  completed %lld (degraded %lld), failed %lld | reconnects %llu, "
        "replays %llu, batch retries %llu, recovery %.3f s\n",
        (long long)chaos_completed, (long long)chaos_degraded,
        (long long)chaos_failed, (unsigned long long)chaos_reconnects,
        (unsigned long long)chaos_replays, (unsigned long long)chaos_retries,
        chaos_recovery_s);
    if (dcount > 0)
      std::printf(
          "  degraded (cold) mean run_vtime %.0f s vs seeded %.0f s "
          "(%.2fx)\n",
          degraded_vtime_mean, seeded_vtime_mean,
          seeded_vtime_mean > 0 ? degraded_vtime_mean / seeded_vtime_mean
                                : 0.0);
    std::printf("  surviving seeded jobs vs fault-free baseline: %s\n",
                chaos_identical ? "bit-identical" : "MISMATCH");
    std::printf("  chaos gate: %s\n", chaos_ok ? "OK" : "FAILED");
  }
#endif

  // Machine-readable trajectory point: configuration, per-policy wall/virtual
  // results and memo outcome counts (--json BENCH_serve_traffic.json).
  bench::JsonObject json;
  json.set("bench", "serve_traffic");
  json.set("n", n);
  json.set("jobs", jobs);
  json.set("slots", i64(slots));
  json.set("gpus_per_job", i64(gpus_per_job));
  json.set("threads", i64(args.threads()));
  json.set("overlap_slices", args.overlap());
  json.set("pipeline_depth", args.pipeline());
  json.set("shards", i64(shards));
  json.set("fabric_gbps", fabric_gbps);
  json.set("tau_dedup", tau_dedup);
  json.set("transport", transport_name(transport));
  json.set("identical_outputs", identical);
  json.set("admission", admission_arg);
  json.set("preempt", preempt);
  if (preempt) json.set("preempt_quantum_s", quantum);
  if (scaled_jobs > 0) json.set("scaled_jobs", scaled_jobs);
  for (const auto& pr : results) {
    const auto& st = pr.stats;
    const auto qw = summarize(st.queue_wait);
    const auto ta = summarize(st.turnaround);
    auto& row = json.row("policies");
    row.set("policy", pr.name);
    row.set("completed", st.completed);
    row.set("rejected", st.rejected);
    row.set("deadline_missed", st.deadline_missed);
    row.set("p50_queue_wait_s", qw.p50);
    row.set("p99_queue_wait_s", qw.p99);
    row.set("p50_turnaround_s", ta.p50);
    row.set("p99_turnaround_s", ta.p99);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("utilization", st.utilization(slots));
    row.set("lookups", st.lookups);
    row.set("cache_hits", st.cache_hits);
    row.set("db_hits", st.db_hits);
    row.set("shared_hits", st.shared_hits);
    row.set("misses", st.misses);
    row.set("promoted", st.promoted);
    row.set("shared_dedup_drops", st.shared_dedup_drops);
    row.set("shared_cap_drops", st.shared_cap_drops);
    row.set("fabric_fetch_s", st.fabric_fetch_s);
    row.set("fabric_promote_s", st.fabric_promote_s);
  }
  for (const auto& pr : sweep) {
    const auto& st = pr.stats;
    auto& row = json.row("shard_sweep");
    row.set("shards", i64(pr.shards));
    row.set("tier_entries", i64(pr.tier_entries));
    row.set("fabric_fetch_s", st.fabric_fetch_s);
    row.set("fabric_promote_s", st.fabric_promote_s);
    row.set("uplink_contention_s", pr.contention_s);
    row.set("makespan_s", st.makespan);
    row.set("shared_hits", st.shared_hits);
    row.set("promoted", st.promoted);
    row.set("shared_dedup_drops", st.shared_dedup_drops);
    row.set("shared_cap_drops", st.shared_cap_drops);
  }
  for (const auto& pr : xruns) {
    const auto& st = pr.stats;
    const auto ta = summarize(st.turnaround);
    auto& row = json.row("transports");
    row.set("transport", transport_name(pr.transport));
    row.set("completed", st.completed);
    row.set("p99_turnaround_s", ta.p99);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("fabric_fetch_s", st.fabric_fetch_s);
    row.set("fabric_promote_s", st.fabric_promote_s);
    row.set("shared_hits", st.shared_hits);
    row.set("makespan_s", st.makespan);
  }
  for (const auto& pr : preempt_runs) {
    const auto& st = pr.stats;
    const auto ta = summarize(st.turnaround);
    const auto ta0 = summarize(results[0].stats.turnaround);
    auto& row = json.row("preemption");
    row.set("quantum_s", quantum);
    row.set("preemptions", st.preemptions);
    row.set("completed", st.completed);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("p50_turnaround_s", ta.p50);
    row.set("p99_turnaround_s", ta.p99);
    row.set("baseline_p99_turnaround_s", ta0.p99);
    row.set("utilization", st.utilization(pr.slots));
    row.set("identical_to_baseline", identical);
  }
  for (std::size_t i = 0; i < adm_runs.size(); ++i) {
    const auto& pr = adm_runs[i];
    const auto& st = pr.stats;
    const auto ta = summarize(st.turnaround);
    u64 admitted = 0;
    for (const auto& js : pr.job_stats) admitted += js.admitted ? 1 : 0;
    auto& row = json.row("admission_modes");
    row.set("mode", admission_mode_name(adm_modes[i]));
    row.set("admitted", admitted);
    row.set("admission_rejected", st.admission_rejected);
    row.set("admission_downgraded", st.admission_downgraded);
    row.set("completed", st.completed);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("p50_turnaround_s", ta.p50);
    row.set("p99_turnaround_s", ta.p99);
    row.set("preemptions", st.preemptions);
    row.set("fabric_fetch_s", st.fabric_fetch_s);
  }
  for (const auto& pr : slot_runs) {
    const auto& st = pr.stats;
    const auto ta = summarize(st.turnaround);
    auto& row = json.row("slot_sweep");
    row.set("slots", i64(pr.slots));
    row.set("completed", st.completed);
    row.set("rejected", st.rejected);
    row.set("preemptions", st.preemptions);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("p99_turnaround_s", ta.p99);
    row.set("utilization", st.utilization(pr.slots));
    row.set("makespan_s", st.makespan);
  }
  for (const auto& pr : scaled_runs) {
    const auto& st = pr.stats;
    const auto ta = summarize(st.turnaround);
    auto& row = json.row("scaled");
    row.set("jobs", scaled_jobs);
    row.set("completed", st.completed);
    row.set("rejected", st.rejected);
    row.set("admission_rejected", st.admission_rejected);
    row.set("preemptions", st.preemptions);
    row.set("deadline_hit_rate", deadline_hit_rate(st));
    row.set("p50_turnaround_s", ta.p50);
    row.set("p99_turnaround_s", ta.p99);
    row.set("makespan_s", st.makespan);
    row.set("utilization", st.utilization(pr.slots));
    row.set("shared_hits", st.shared_hits);
  }
  for (auto& [cls, agg] : scaled_classes) {
    auto& row = json.row("scaled_classes");
    row.set("slo_class", std::string(slo_class_name(SloClass(cls))));
    row.set("jobs", agg.jobs);
    row.set("completed", agg.completed);
    row.set("rejected", agg.rejected);
    row.set("downgraded", agg.downgraded);
    row.set("preempted_jobs", agg.preempted);
    row.set("preemptions", agg.preemptions);
    row.set("deadline_hit_rate",
            agg.completed > 0
                ? double(agg.deadline_hits) / double(agg.completed)
                : 0.0);
    row.set("p50_turnaround_s", pct(agg.turnaround, 0.5));
    row.set("p99_turnaround_s", pct(agg.turnaround, 0.99));
  }
  if (chaos != nullptr) {
    auto& row = json.row("chaos");
    row.set("flavor", chaos_blip ? "blip" : "kill");
    row.set("at_dispatch", chaos_at);
    if (chaos_blip)
      row.set("blip_ms", chaos_blip_ms);
    else
      row.set("restart_after_dispatches", chaos_restart_after);
    row.set("retry_max", i64(retry_max));
    row.set("backoff_ms", backoff_ms);
    row.set("completed", chaos_completed);
    row.set("degraded_jobs", chaos_degraded);
    row.set("jobs_failed", chaos_failed);
    row.set("reconnects", chaos_reconnects);
    row.set("replays", chaos_replays);
    row.set("batch_retries", chaos_retries);
    row.set("recovery_s", chaos_recovery_s);
    row.set("degraded_run_vtime_mean_s", degraded_vtime_mean);
    row.set("seeded_run_vtime_mean_s", seeded_vtime_mean);
    row.set("surviving_identical", chaos_identical);
    row.set("gate", chaos_ok);
  }
  if (trace_path != nullptr) json.set("trace_path", trace_path);
  // The obs registry accumulated across every replay above (all policies,
  // shard counts and transports) — one deterministic instrument dump.
  bench::append_obs(json, obs::metrics().snapshot());
  json.set("wall_s", wall.seconds());
  if (!bench::write_json(args.json_path(), json)) return 1;
  bench::footer(wall.seconds());
  return identical && chaos_ok && preempt_ok ? 0 : 1;
}
