// google-benchmark microbenchmarks of the from-scratch FFT/NUFFT kernels —
// the substrate under every F_u*D operator. Not a paper figure; documents
// the real cost structure of the numerical core on this host.
//
// The `allocs/op` counter reports scratch-arena heap allocations per
// transform (see common/scratch.hpp). Every kernel is warmed once before
// the timing loop, so the steady-state value must be exactly 0 — the
// allocation-free hot path the stage-execution engine's miss-compute phase
// relies on. The BM_Fused* entries extend the same contract to the fused
// elementwise solver kernels (admm/kernels.hpp): their per-tile reduction
// partials live in the caller's scratch arena, so steady-state allocs/op
// must also be exactly 0 at any pool width.
#include <benchmark/benchmark.h>

#include "admm/kernels.hpp"
#include "admm/tv.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/scratch.hpp"
#include "fft/fft.hpp"
#include "fft/nufft.hpp"

namespace {

using namespace mlr;

std::vector<cfloat> signal(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<cfloat> v(static_cast<size_t>(n));
  for (auto& x : v) x = cfloat(float(rng.normal()), float(rng.normal()));
  return v;
}

/// Counts scratch-arena heap allocations across the timing loop and reports
/// them per op; steady state (post-warmup) must be zero.
class AllocCounter {
 public:
  AllocCounter() : start_(scratch_heap_allocs()) {}
  void report(benchmark::State& state) const {
    state.counters["allocs/op"] =
        benchmark::Counter(double(scratch_heap_allocs() - start_),
                           benchmark::Counter::kAvgIterations);
  }

 private:
  u64 start_;
};

void BM_FftPow2(benchmark::State& state) {
  const i64 n = state.range(0);
  fft::Plan1D plan(n);
  auto x = signal(n, 1);
  plan.forward(x);  // warm the plan's per-thread scratch
  AllocCounter allocs;
  for (auto _ : state) {
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FftPow2)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftBluestein(benchmark::State& state) {
  const i64 n = state.range(0);
  fft::Plan1D plan(n);
  auto x = signal(n, 2);
  plan.forward(x);  // warm the Bluestein convolution scratch
  AllocCounter allocs;
  for (auto _ : state) {
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FftBluestein)->Arg(60)->Arg(250)->Arg(1000);

void BM_Fft2D(benchmark::State& state) {
  const i64 n = state.range(0);
  Array2D<cfloat> a(n, n);
  Rng rng(3);
  for (auto& v : a) v = cfloat(float(rng.normal()), float(rng.normal()));
  fft::fft2d(a, false);  // warm the per-thread plan cache + strided scratch
  AllocCounter allocs;
  for (auto _ : state) {
    fft::fft2d(a, false);
    benchmark::DoNotOptimize(a.data());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Fft2D)->Arg(32)->Arg(64)->Arg(128);

void BM_Nufft1DType2(benchmark::State& state) {
  const i64 n = state.range(0);
  fft::Nufft1D plan(n);
  Rng rng(4);
  std::vector<double> nu(static_cast<size_t>(n));
  for (auto& v : nu) v = rng.uniform(-double(n) / 2, double(n) / 2);
  auto f = signal(n, 5);
  std::vector<cfloat> out(static_cast<size_t>(n));
  plan.type2(nu, f, out, -1);  // warm the fine-grid scratch
  AllocCounter allocs;
  for (auto _ : state) {
    plan.type2(nu, f, out, -1);
    benchmark::DoNotOptimize(out.data());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Nufft1DType2)->Arg(64)->Arg(256)->Arg(1024);

void BM_Nufft2DType2(benchmark::State& state) {
  const i64 n = state.range(0);
  fft::Nufft2D plan(n, n);
  Rng rng(6);
  const i64 pts = n * n;
  std::vector<double> nr(static_cast<size_t>(pts)), nc(static_cast<size_t>(pts));
  for (i64 i = 0; i < pts; ++i) {
    nr[size_t(i)] = rng.uniform(-double(n) / 2, double(n) / 2);
    nc[size_t(i)] = rng.uniform(-double(n) / 2, double(n) / 2);
  }
  auto f = signal(pts, 7);
  std::vector<cfloat> out(static_cast<size_t>(pts));
  plan.type2(nr, nc, f, out, -1);  // warm the fine-grid + column scratch
  AllocCounter allocs;
  for (auto _ : state) {
    plan.type2(nr, nc, f, out, -1);
    benchmark::DoNotOptimize(out.data());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * pts);
}
BENCHMARK(BM_Nufft2DType2)->Arg(16)->Arg(32);

admm::VectorField field(Shape3 s, u64 seed) {
  admm::VectorField f(s);
  for (int c = 0; c < 3; ++c) {
    Rng rng(seed + u64(c));
    for (auto& x : f.c[c]) x = cfloat(float(rng.normal()), float(rng.normal()));
  }
  return f;
}

// The RSP chain — ∇u, +λ/ρ, soft-threshold, ‖ψ−ψ_prev‖² — as ONE fused
// streaming kernel. range(0) = cube side, range(1) = pool width.
void BM_FusedRspShrink(benchmark::State& state) {
  const i64 n = state.range(0);
  const Shape3 s{n, n, n};
  Array3D<cfloat> u(s);
  Rng rng(10);
  for (auto& v : u) v = cfloat(float(rng.normal()), float(rng.normal()));
  const auto lambda = field(s, 11);
  auto psi = field(s, 12);
  admm::VectorField gu(s);
  ThreadPool pool(unsigned(state.range(1)));
  admm::SolverKernels knl;
  knl.set_pool(&pool);
  double sink = knl.rsp_shrink(u, lambda, 0.7, 1e-3, psi, gu, true);  // warm
  AllocCounter allocs;
  for (auto _ : state) {
    sink += knl.rsp_shrink(u, lambda, 0.7, 1e-3, psi, gu, true);
    benchmark::DoNotOptimize(sink);
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * u.size());
}
BENCHMARK(BM_FusedRspShrink)->Args({24, 1})->Args({24, 4})->Args({40, 4});

// The LSP gradient chain — ∇u, −g, ∇ᵀ·, +ρ·, two dot products — fused.
void BM_FusedLspCombine(benchmark::State& state) {
  const i64 n = state.range(0);
  const Shape3 s{n, n, n};
  Array3D<cfloat> u(s), grad_data(s), G_prev(s), G(s);
  Rng rng(13);
  auto fill = [&rng](Array3D<cfloat>& a) {
    for (auto& v : a) v = cfloat(float(rng.normal()), float(rng.normal()));
  };
  fill(u);
  fill(grad_data);
  fill(G_prev);
  const auto g = field(s, 14);
  ThreadPool pool(unsigned(state.range(1)));
  admm::SolverKernels knl;
  knl.set_pool(&pool);
  auto d = knl.lsp_combine(u, g, grad_data, 0.7, G_prev, true, G);  // warm
  AllocCounter allocs;
  for (auto _ : state) {
    d = knl.lsp_combine(u, g, grad_data, 0.7, G_prev, true, G);
    benchmark::DoNotOptimize(d.gg);
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * u.size());
}
BENCHMARK(BM_FusedLspCombine)->Args({24, 1})->Args({24, 4})->Args({40, 4});

void BM_NaiveNdftReference(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(8);
  std::vector<double> nu(static_cast<size_t>(n));
  for (auto& v : nu) v = rng.uniform(-double(n) / 2, double(n) / 2);
  auto f = signal(n, 9);
  std::vector<cfloat> out(static_cast<size_t>(n));
  for (auto _ : state) {
    fft::ndft1d_type2(nu, f, out, -1);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_NaiveNdftReference)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
