// Fig 11: key coalescing — communication + similarity-search time per chunk,
// with and without packing keys into 4 KB payloads. Paper: ~25 % improvement
// from better bandwidth utilization and batched lookup.
#include "bench_util.hpp"
#include "core/mlr.hpp"

namespace {

struct Run {
  double comm = 0, search = 0;
  mlr::u64 messages = 0;
};

Run run_queries(bool coalesce, mlr::i64 keys, mlr::i64 dim) {
  using namespace mlr;
  sim::Interconnect net;
  sim::MemoryNode node;
  memo::MemoDbConfig cfg;
  cfg.key_dim = dim;
  cfg.coalesce = coalesce;
  memo::MemoDb db(cfg, &net, &node);
  Rng rng(7);
  // Populate, then issue batched queries like one ADMM stage does.
  for (i64 i = 0; i < keys; ++i) {
    std::vector<float> key(static_cast<size_t>(dim));
    for (auto& x : key) x = float(rng.normal());
    db.insert(memo::OpKind::Fu2D, key, std::vector<cfloat>(256), 0.0);
  }
  std::vector<memo::QueryRequest> reqs;
  for (i64 i = 0; i < keys; ++i) {
    std::vector<float> key(static_cast<size_t>(dim));
    for (auto& x : key) x = float(rng.normal());
    reqs.push_back({memo::OpKind::Fu2D, std::move(key)});
  }
  (void)db.query_batch(reqs, 0.0);
  return {db.timing().comm_s, db.timing().search_s, db.messages_sent()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 keys = args.get_i64("--keys", 512);
  const i64 dim = args.get_i64("--dim", 60);
  WallTimer wall;
  bench::header("Fig 11 — key coalescing (4 KB payloads)",
                "paper Fig 11 (~25 % gain; 95 % bandwidth utilization)",
                "coalesced < uncoalesced on comm + search");

  auto with = run_queries(true, keys, dim);
  auto without = run_queries(false, keys, dim);
  const double t_with = with.comm + with.search;
  const double t_without = without.comm + without.search;

  std::printf("per-stage query batch of %lld keys (%lld-d):\n\n",
              (long long)keys, (long long)dim);
  std::printf("%-16s %-12s %-14s %-14s %-10s\n", "config", "messages",
              "comm (ms)", "search (ms)", "total");
  std::printf("%-16s %-12llu %-14.3f %-14.3f %.3f\n", "w/o coalesce",
              (unsigned long long)without.messages, 1e3 * without.comm,
              1e3 * without.search, 1e3 * t_without);
  std::printf("%-16s %-12llu %-14.3f %-14.3f %.3f\n", "w/ coalesce",
              (unsigned long long)with.messages, 1e3 * with.comm,
              1e3 * with.search, 1e3 * t_with);
  std::printf("\nnormalized (w/o = 1.0): coalesced = %.2f  →  %.0f%% "
              "improvement (paper: ~25%%)\n",
              t_with / t_without, 100.0 * (1.0 - t_with / t_without));
  sim::LinkSpec fastpath;
  fastpath.latency = 8.0e-9;  // NIC fast-path per-message overhead
  sim::Interconnect probe(fastpath);
  std::printf("payload efficiency (wire): 240 B key = %.0f%%, 4 KB payload = "
              "%.0f%% (paper: 95%% at 4 KB)\n",
              100.0 * probe.payload_efficiency(240),
              100.0 * probe.payload_efficiency(4096));
  bench::footer(wall.seconds());
  return 0;
}
