// Shared helpers for the benchmark harness: flag parsing and paper-style
// table printing. Each bench binary regenerates one table or figure of the
// paper's evaluation section (see DESIGN.md §4 for the index).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace mlr::bench {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] i64 get_i64(const char* flag, i64 def) const {
    const char* v = find(flag);
    return v != nullptr ? std::atoll(v) : def;
  }
  [[nodiscard]] double get_double(const char* flag, double def) const {
    const char* v = find(flag);
    return v != nullptr ? std::atof(v) : def;
  }
  [[nodiscard]] const char* get_str(const char* flag, const char* def) const {
    const char* v = find(flag);
    return v != nullptr ? v : def;
  }
  /// Engine worker threads (`--threads N`); negatives clamp to 0 (= share
  /// the process-global pool). One parse point for every bench.
  [[nodiscard]] unsigned threads() const {
    const i64 t = get_i64("--threads", 0);
    return t > 0 ? unsigned(t) : 0u;
  }
  /// DB/compute overlap slices (`--overlap N`, default on at 4 slices;
  /// 0 = legacy barriered path). One parse point for every bench.
  [[nodiscard]] i64 overlap() const {
    return std::max<i64>(0, get_i64("--overlap", 4));
  }
  /// Cross-stage pipeline depth (`--pipeline N`, default on at depth 2;
  /// 0/1 = per-stage barrier). One parse point for every bench.
  [[nodiscard]] i64 pipeline() const {
    return std::max<i64>(0, get_i64("--pipeline", 2));
  }
  /// Tail-drainer lanes (`--tail-lanes N`; default 0 = the executor's
  /// automatic min(kNumOpKinds, hardware cores); 1 = the legacy single
  /// global drainer). One parse point for every bench; the executor clamps
  /// explicit values to [1, kNumOpKinds].
  [[nodiscard]] i64 tail_lanes() const {
    return std::max<i64>(0, get_i64("--tail-lanes", 0));
  }
  /// Output path for the machine-readable result (`--json <path>`); null
  /// when not requested.
  [[nodiscard]] const char* json_path() const {
    return get_str("--json", nullptr);
  }
  [[nodiscard]] bool has(const char* flag) const {
    for (int i = 1; i < argc_; ++i)
      if (std::strcmp(argv_[i], flag) == 0) return true;
    return false;
  }

 private:
  [[nodiscard]] const char* find(const char* flag) const {
    for (int i = 1; i + 1 < argc_; ++i)
      if (std::strcmp(argv_[i], flag) == 0) return argv_[i + 1];
    return nullptr;
  }
  int argc_;
  char** argv_;
};

inline void header(const char* experiment, const char* paper_ref,
                   const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference : %s\n", paper_ref);
  std::printf("shape to match  : %s\n", expectation);
  std::printf("================================================================\n\n");
}

inline void footer(double wall_s) {
  std::printf("\n[host wall time: %.1f s]\n\n", wall_s);
}

/// Print a horizontal ASCII bar row: label, value, normalized bar.
inline void bar_row(const char* label, double value, double max_value,
                    const char* unit = "") {
  std::printf("  %-26s %10.3f %-3s |%s\n", label, value, unit,
              ascii_bar(max_value > 0 ? value / max_value : 0, 36).c_str());
}

// ---------------------------------------------------------------------------
// Machine-readable results (`--json <path>`): a minimal ordered JSON object
// writer so benches can emit their configuration, wall times and memo
// outcome counts as BENCH_*.json — the perf trajectory future PRs diff.
//
//   JsonObject j;
//   j.set("bench", "stage_scaling");
//   j.set("threads", i64(8));
//   auto& row = j.row("rows");           // append an object to array "rows"
//   row.set("barrier_s", 0.31);
//   write_json(path, j);                 // pretty-printed, trailing newline

class JsonObject {
 public:
  void set(const char* key, const std::string& v) { fields_.push_back({key, v}); }
  void set(const char* key, const char* v) { set(key, std::string(v)); }
  void set(const char* key, double v) { fields_.push_back({key, v}); }
  void set(const char* key, i64 v) { fields_.push_back({key, v}); }
  void set(const char* key, u64 v) { fields_.push_back({key, i64(v)}); }
  void set(const char* key, bool v) { fields_.push_back({key, v}); }
  /// Append one object to the array field `key` (created on first use) and
  /// return it for population. References stay valid (nodes are pointers).
  JsonObject& row(const char* key) {
    for (auto& f : fields_) {
      if (f.key == key && std::holds_alternative<Array>(f.value)) {
        auto& arr = std::get<Array>(f.value);
        arr.push_back(std::make_unique<JsonObject>());
        return *arr.back();
      }
    }
    fields_.push_back({key, Array{}});
    auto& arr = std::get<Array>(fields_.back().value);
    arr.push_back(std::make_unique<JsonObject>());
    return *arr.back();
  }

  void dump(std::string& out, int indent = 0) const {
    const std::string pad(std::size_t(indent) * 2, ' ');
    const std::string pad1(std::size_t(indent + 1) * 2, ' ');
    out += "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      const auto& f = fields_[i];
      out += pad1 + "\"" + escape(f.key) + "\": ";
      if (const auto* s = std::get_if<std::string>(&f.value)) {
        out += "\"" + escape(*s) + "\"";
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", *d);
        out += buf;
      } else if (const auto* n = std::get_if<i64>(&f.value)) {
        out += std::to_string(*n);
      } else if (const auto* b = std::get_if<bool>(&f.value)) {
        out += *b ? "true" : "false";
      } else if (const auto* arr = std::get_if<Array>(&f.value)) {
        out += "[";
        for (std::size_t r = 0; r < arr->size(); ++r) {
          out += (r == 0 ? "\n" : ",\n") + pad1 + "  ";
          (*arr)[r]->dump(out, indent + 2);
        }
        out += "\n" + pad1 + "]";
      }
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += pad + "}";
  }

 private:
  using Array = std::vector<std::unique_ptr<JsonObject>>;
  struct Field {
    std::string key;
    std::variant<std::string, double, i64, bool, Array> value;
  };
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::vector<Field> fields_;
};

/// Append an obs::MetricsSnapshot to the bench JSON as three row arrays
/// (obs_counters / obs_gauges / obs_histograms) — one shared shape for every
/// bench so the perf trajectory can diff instrument values across PRs.
/// Histogram rows carry the summary (count, sum, p50/p99), not the full
/// bucket vector; the full dump lives in MetricsSnapshot::to_json().
inline void append_obs(JsonObject& json, const obs::MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    auto& row = json.row("obs_counters");
    row.set("name", name);
    row.set("value", v);
  }
  for (const auto& [name, v] : snap.gauges) {
    auto& row = json.row("obs_gauges");
    row.set("name", name);
    row.set("value", v);
  }
  for (const auto& h : snap.histograms) {
    auto& row = json.row("obs_histograms");
    row.set("name", h.name);
    row.set("count", h.count);
    row.set("sum", h.sum);
    row.set("p50", h.quantile(0.5));
    row.set("p99", h.quantile(0.99));
  }
}

/// Write `obj` to `path` (no-op when path is null); returns success.
inline bool write_json(const char* path, const JsonObject& obj) {
  if (path == nullptr) return true;
  std::string text;
  obj.dump(text);
  text += "\n";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("[json written to %s]\n", path);
  return true;
}

}  // namespace mlr::bench
