// Shared helpers for the benchmark harness: flag parsing and paper-style
// table printing. Each bench binary regenerates one table or figure of the
// paper's evaluation section (see DESIGN.md §4 for the index).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace mlr::bench {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] i64 get_i64(const char* flag, i64 def) const {
    const char* v = find(flag);
    return v != nullptr ? std::atoll(v) : def;
  }
  [[nodiscard]] double get_double(const char* flag, double def) const {
    const char* v = find(flag);
    return v != nullptr ? std::atof(v) : def;
  }
  [[nodiscard]] const char* get_str(const char* flag, const char* def) const {
    const char* v = find(flag);
    return v != nullptr ? v : def;
  }
  /// Engine worker threads (`--threads N`); negatives clamp to 0 (= share
  /// the process-global pool). One parse point for every bench.
  [[nodiscard]] unsigned threads() const {
    const i64 t = get_i64("--threads", 0);
    return t > 0 ? unsigned(t) : 0u;
  }
  /// DB/compute overlap slices (`--overlap N`, default on at 4 slices;
  /// 0 = legacy barriered path). One parse point for every bench.
  [[nodiscard]] i64 overlap() const {
    return std::max<i64>(0, get_i64("--overlap", 4));
  }
  [[nodiscard]] bool has(const char* flag) const {
    for (int i = 1; i < argc_; ++i)
      if (std::strcmp(argv_[i], flag) == 0) return true;
    return false;
  }

 private:
  [[nodiscard]] const char* find(const char* flag) const {
    for (int i = 1; i + 1 < argc_; ++i)
      if (std::strcmp(argv_[i], flag) == 0) return argv_[i + 1];
    return nullptr;
  }
  int argc_;
  char** argv_;
};

inline void header(const char* experiment, const char* paper_ref,
                   const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference : %s\n", paper_ref);
  std::printf("shape to match  : %s\n", expectation);
  std::printf("================================================================\n\n");
}

inline void footer(double wall_s) {
  std::printf("\n[host wall time: %.1f s]\n\n", wall_s);
}

/// Print a horizontal ASCII bar row: label, value, normalized bar.
inline void bar_row(const char* label, double value, double max_value,
                    const char* unit = "") {
  std::printf("  %-26s %10.3f %-3s |%s\n", label, value, unit,
              ascii_bar(max_value > 0 ? value / max_value : 0, 36).c_str());
}

}  // namespace mlr::bench
