// Fig 14: scalability of the four FFT operators and of the full pass across
// 1–16 GPUs (4 per node) on the 1K³ dataset. Paper: F_u1D 1.1 s → 0.5 s
// (2.2× at 16 GPUs), sublinear; 2→4 GPUs gives 1.36×, 4→8 almost nothing
// (inter-node communication).
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  WallTimer wall;
  bench::header("Fig 14 — multi-GPU scalability (1K^3)",
                "paper Fig 14 (2.2x at 16 GPUs for F_u1D; plateau past 4)",
                "per-op time falls with GPUs; overall gain collapses across "
                "the node boundary");

  auto geom = lamino::Geometry::cube(n);
  lamino::Operators ops(geom);
  auto u = lamino::to_complex(lamino::make_phantom(
      geom.object_shape(), lamino::PhantomKind::BrainTissue, 5));
  Array3D<cfloat> dhat(geom.data_shape());
  ops.forward_freq(u, dhat);
  const double s = 1024.0 / double(n);
  const double ws = s * s * s;

  std::printf("%-6s %-7s | %-9s %-9s %-9s %-9s | %-10s %-8s\n", "GPUs",
              "nodes", "Fu1D(s)", "Fu2D(s)", "F*u2D(s)", "F*u1D(s)",
              "pass (s)", "speedup");
  double t1 = 0;
  for (int gpus : {1, 2, 4, 8, 16}) {
    cluster::ClusterSpec spec;
    spec.gpus = gpus;
    cluster::Cluster c(ops, spec, {.enable = false, .work_scale = ws});
    std::vector<double> per_op;
    const double t = c.forward_adjoint_pass(u, dhat, 1, 0.0, &per_op);
    if (gpus == 1) t1 = t;
    std::printf("%-6d %-7d | %-9.2f %-9.2f %-9.2f %-9.2f | %-10.2f %.2fx\n",
                gpus, c.num_nodes(), per_op[0], per_op[1], per_op[2],
                per_op[3], t, t1 / t);
  }
  std::printf("\nnote: >4 GPUs spans nodes; the u1 redistribution moves onto "
              "the shared fabric and the marginal speedup collapses.\n");
  bench::footer(wall.seconds());
  return 0;
}
