// Fig 17: ADMM convergence loss with and without memoization. Paper: the
// two curves stay close — memoization does not require extra iterations to
// reach the same convergence.
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int iters = int(args.get_i64("--iters", 24));
  const double tau = args.get_double("--tau", 0.99);
  WallTimer wall;
  bench::header("Fig 17 — convergence with and without memoization",
                "paper Fig 17 (curves nearly overlap at tau = 0.92)",
                "memoized loss tracks the original loss curve");

  auto run = [&](bool memoize) {
    ReconstructionConfig cfg;
    cfg.threads = args.threads();
    cfg.overlap_slices = args.overlap();
    cfg.pipeline_depth = args.pipeline();
    cfg.dataset = Dataset::small(n);
    cfg.dataset.noise = 0.03;  // realistic detector noise sets the loss floor
    cfg.iters = iters;
    cfg.memoize = memoize;
    cfg.tau = tau;
    cfg.chunk_size = 2;  // finer chunks: reuse perturbations average out
    Reconstructor rec(cfg);
    rec.prepare();
    // True loss of the iterate: a fresh (un-memoized) forward pass per
    // iteration, so both curves measure the same quantity — the memoized
    // run's internal residual can be a reused stale value.
    Array3D<cfloat> dhat = rec.projections();
    rec.ops().f2d(dhat, /*inverse=*/false);
    std::vector<double> loss;
    rec.solver().set_iteration_hook([&](int, const Array3D<cfloat>& u) {
      Array3D<cfloat> f(rec.ops().geometry().data_shape());
      rec.ops().forward_freq(u, f);
      double l = 0;
      for (i64 i = 0; i < f.size(); ++i)
        l += std::norm(f.data()[i] - dhat.data()[i]);
      loss.push_back(0.5 * l);
    });
    (void)rec.run();
    return loss;
  };
  auto plain = run(false);
  auto memoized = run(true);

  std::printf("loss per iteration (tau=%.2f):\n\n", tau);
  std::printf("%-6s %-14s %-14s %-8s\n", "iter", "w/o memo", "w/ memo",
              "ratio");
  double worst_tail = 0;
  for (int i = 0; i < iters; ++i) {
    const double r = memoized[size_t(i)] / std::max(plain[size_t(i)], 1e-12);
    if (i >= iters / 2) worst_tail = std::max(worst_tail, r);
    std::printf("%-6d %-14.4g %-14.4g %-8.2f\n", i, plain[size_t(i)],
                memoized[size_t(i)], r);
  }
  std::printf("\nfinal losses: %.4g vs %.4g; worst second-half ratio %.2f\n",
              plain.back(), memoized.back(), worst_tail);
  std::printf(
      "the curves overlap through the descent; near deep convergence the\n"
      "memoized run floors at the tau-ball radius — the paper's curves\n"
      "plateau before that regime (loss ~1e4 on its axis).\n");
  bench::footer(wall.seconds());
  return 0;
}
