// Fig 9: effect of operation cancellation and fusion (memoization disabled),
// on the FFT forward+adjoint pass and on the whole LSP (N_inner = 4), for
// the small and medium datasets.
// Paper: cancel+fusion wins everywhere; cancellation *without* fusion loses
// 5.6 % on the small dataset (frequency-domain COMPLEX64 subtraction on the
// CPU) but gains 61 % on the medium one.
#include "bench_util.hpp"
#include "core/mlr.hpp"

namespace {

struct Strategy {
  const char* name;
  bool cancel, fuse;
};

unsigned g_threads = 0;  // engine worker threads (--threads)
mlr::i64 g_overlap = 4;   // DB/compute overlap slices (--overlap)

double lsp_time(const mlr::Dataset& ds, const Strategy& s, int inner) {
  mlr::ReconstructionConfig cfg;
  cfg.threads = g_threads;
  cfg.overlap_slices = g_overlap;
  cfg.dataset = ds;
  cfg.iters = 2;
  cfg.inner_iters = inner;
  cfg.memoize = false;
  cfg.cancellation = s.cancel;
  cfg.fusion = s.fuse;
  mlr::Reconstructor rec(cfg);
  auto rep = rec.run();
  return rep.result.iterations[1].lsp_s;  // steady-state LSP
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 14);
  g_threads = args.threads();
  g_overlap = args.overlap();
  WallTimer wall;
  bench::header(
      "Fig 9 — operation cancellation and fusion ablation",
      "paper Fig 9 (FFT & LSP, small 1K^3 and medium 1.5K^3 datasets)",
      "cancel+fuse best everywhere; cancel-only hurts small, helps medium");

  const Strategy strategies[3] = {{"w/ cancel w/ fusion", true, true},
                                  {"w/ cancel w/o fusion", true, false},
                                  {"w/o cancel w/o fusion", false, false}};
  Dataset sets[2] = {Dataset::small(n), Dataset::medium(n + 6)};

  for (const auto& ds : sets) {
    std::printf("dataset %s:\n", ds.label.c_str());
    // FFT = one forward+adjoint pass ≈ LSP with N_inner = 1;
    // LSP(4xFFT) = N_inner = 4 (paper's panels).
    double fft[3], lsp[3];
    for (int s = 0; s < 3; ++s) {
      fft[s] = lsp_time(ds, strategies[s], 1);
      lsp[s] = lsp_time(ds, strategies[s], 4);
    }
    const double fmax = std::max({fft[0], fft[1], fft[2]});
    const double lmax = std::max({lsp[0], lsp[1], lsp[2]});
    std::printf(" FFT (one forward + adjoint):\n");
    for (int s = 0; s < 3; ++s)
      bench::bar_row(strategies[s].name, fft[s], fmax, "s");
    std::printf(" LSP (4x FFT):\n");
    for (int s = 0; s < 3; ++s)
      bench::bar_row(strategies[s].name, lsp[s], lmax, "s");
    std::printf(
        " cancel+fuse vs none: FFT %+.1f%%, LSP %+.1f%%; cancel-only vs none: "
        "%+.1f%%\n\n",
        100.0 * (fft[2] - fft[0]) / fft[2],
        100.0 * (lsp[2] - lsp[0]) / lsp[2],
        100.0 * (lsp[2] - lsp[1]) / lsp[2]);
  }
  bench::footer(wall.seconds());
  return 0;
}
