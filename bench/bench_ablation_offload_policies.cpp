// Ablation (§5.1 "Why not LRU?"): ADMM-Offload vs the LRU policy vs greedy.
// Paper: ADMM-Offload outperforms LRU-based offloading by 40.5 % on average
// — LRU decides only when to offload, never when to prefetch, so every miss
// pays a fully exposed fetch.
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 12);
  const int iters = int(args.get_i64("--iters", 5));
  WallTimer wall;
  bench::header("Ablation — offload policy comparison (planned vs LRU vs greedy)",
                "paper §5.1 (ADMM-Offload beats LRU by 40.5% on average)",
                "vtime: planned < LRU < greedy");

  struct Row {
    const char* name;
    OffloadMode mode;
    double vtime = 0, stall = 0, peak = 0;
  } rows[] = {{"no offload", OffloadMode::None},
              {"ADMM-Offload (planned)", OffloadMode::Planned},
              {"LRU", OffloadMode::Lru},
              {"greedy", OffloadMode::Greedy}};

  for (auto& row : rows) {
    ReconstructionConfig cfg;
    cfg.threads = args.threads();
    cfg.overlap_slices = args.overlap();
    cfg.pipeline_depth = args.pipeline();
    cfg.dataset = Dataset::small(n);
    cfg.iters = iters;
    cfg.memoize = false;
    cfg.offload = row.mode;
    Reconstructor rec(cfg);
    auto rep = rec.run();
    row.vtime = rep.vtime_s;
    row.stall = rep.exposed_stall_s;
    row.peak = rep.peak_rss_bytes;
  }
  std::printf("%-24s %-12s %-12s %-14s\n", "policy", "vtime(s)", "stall(s)",
              "peak RSS(GB)");
  for (const auto& row : rows)
    std::printf("%-24s %-12.1f %-12.1f %-14.1f\n", row.name, row.vtime,
                row.stall, row.peak / kGiB);
  const double lru_vs_planned =
      (rows[2].vtime - rows[1].vtime) / rows[2].vtime;
  std::printf("\nADMM-Offload outperforms LRU by %.1f%% (paper: 40.5%% avg)\n",
              100.0 * lru_vs_planned);
  bench::footer(wall.seconds());
  return 0;
}
