// Fig 12: hit rate of the private vs global memoization cache for F_u2D
// across ADMM iterations, plus the comparison-count economics (§6.5):
// similar hit rates, but the private cache does 1 similarity comparison per
// lookup where the global cache does one per resident entry (64 at 1K³) —
// an ~85 % computation saving.
#include "bench_util.hpp"
#include "core/mlr.hpp"

namespace {

struct Series {
  std::vector<double> hit_rate;  // per iteration, F_u2D only
  mlr::u64 comparisons = 0;
  mlr::u64 lookups = 0;
};

unsigned g_threads = 0;  // engine worker threads (--threads)
mlr::i64 g_overlap = 4;   // DB/compute overlap slices (--overlap)

Series run(mlr::memo::CacheKind kind, mlr::i64 n, int iters) {
  using namespace mlr;
  ReconstructionConfig cfg;
  cfg.threads = g_threads;
  cfg.overlap_slices = g_overlap;
  cfg.dataset = Dataset::small(n);
  cfg.iters = iters;
  cfg.memoize = true;
  cfg.cache = kind;
  Reconstructor rec(cfg);
  rec.prepare();
  std::vector<memo::ChunkRecord> records;
  rec.wrapper().set_record_sink(&records);
  std::vector<std::size_t> marks;
  rec.solver().set_iteration_hook(
      [&](int, const Array3D<cfloat>&) { marks.push_back(records.size()); });
  (void)rec.run();
  Series s;
  std::size_t prev = 0;
  for (std::size_t m : marks) {
    int fu2d = 0, hits = 0;
    for (std::size_t i = prev; i < m; ++i) {
      if (records[i].kind != memo::OpKind::Fu2D) continue;
      if (records[i].outcome == memo::MemoOutcome::Computed) continue;
      ++fu2d;
      if (records[i].outcome == memo::MemoOutcome::CacheHit) ++hits;
    }
    s.hit_rate.push_back(fu2d ? double(hits) / fu2d : 0.0);
    prev = m;
  }
  if (rec.wrapper().cache() != nullptr) {
    s.comparisons = rec.wrapper().cache()->stats().comparisons;
    s.lookups = rec.wrapper().cache()->stats().lookups;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int iters = int(args.get_i64("--iters", 16));
  g_threads = args.threads();
  g_overlap = args.overlap();
  WallTimer wall;
  bench::header("Fig 12 — private vs global memoization cache (F_u2D)",
                "paper Fig 12 + §6.5 (85 % fewer comparisons)",
                "similar hit rates; private does ~1 comparison per lookup");

  auto priv = run(memo::CacheKind::Private, n, iters);
  auto glob = run(memo::CacheKind::Global, n, iters);

  std::printf("F_u2D cache hit rate per iteration (%%):\n\n");
  std::printf("%-6s %-10s %-10s\n", "iter", "private", "global");
  for (std::size_t i = 0; i < priv.hit_rate.size(); ++i) {
    std::printf("%-6zu %-10.0f %-10.0f\n", i, 100.0 * priv.hit_rate[i],
                i < glob.hit_rate.size() ? 100.0 * glob.hit_rate[i] : 0.0);
  }
  const double cmp_priv =
      priv.lookups ? double(priv.comparisons) / priv.lookups : 0;
  const double cmp_glob =
      glob.lookups ? double(glob.comparisons) / glob.lookups : 0;
  std::printf("\nsimilarity comparisons per lookup: private %.1f, global %.1f\n",
              cmp_priv, cmp_glob);
  std::printf("computation saving from private cache: %.0f%%  (paper: 85%%)\n",
              100.0 * (1.0 - cmp_priv / std::max(cmp_glob, 1e-9)));
  bench::footer(wall.seconds());
  return 0;
}
