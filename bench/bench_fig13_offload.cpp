// Fig 13: RSS over (virtual) time and execution time for three policies —
// plain ADMM, greedy offload, ADMM-Offload. Paper: no offload peaks at
// 121 GB; greedy saves 42 % of memory but loses 81.5 % performance
// (MT = 0.51); ADMM-Offload saves 29 % at 21 % cost (MT = 1.38).
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 12);
  const int iters = int(args.get_i64("--iters", 5));
  WallTimer wall;
  bench::header("Fig 13 — ADMM-Offload memory/time tradeoff",
                "paper Fig 13 (121 GB; greedy MT 0.51; planned MT 1.38)",
                "greedy saves most memory at huge cost; planner balances (MT"
                " planned > greedy)");

  struct Row {
    const char* name;
    OffloadMode mode;
    double vtime = 0, peak = 0, stall = 0;
  } rows[] = {{"ADMM (no offload)", OffloadMode::None},
              {"ADMM greedy offload", OffloadMode::Greedy},
              {"ADMM-Offload", OffloadMode::Planned}};

  for (auto& row : rows) {
    ReconstructionConfig cfg;
    cfg.threads = args.threads();
    cfg.overlap_slices = args.overlap();
    cfg.pipeline_depth = args.pipeline();
    cfg.dataset = Dataset::small(n);
    cfg.iters = iters;
    cfg.memoize = false;
    cfg.offload = row.mode;
    Reconstructor rec(cfg);
    auto rep = rec.run();
    row.vtime = rep.vtime_s;
    row.peak = rep.peak_rss_bytes;
    row.stall = rep.exposed_stall_s;
  }

  const double base_t = rows[0].vtime, base_m = rows[0].peak;
  std::printf("%-22s %-12s %-14s %-12s %-8s %-8s\n", "policy", "vtime(s)",
              "peak RSS(GB)", "stall(s)", "M", "MT");
  for (const auto& row : rows) {
    const double m = (base_m - row.peak) / base_m;
    const double t = (row.vtime - base_t) / base_t;
    const double mt = row.mode == OffloadMode::None
                          ? 0.0
                          : m / std::max(t, 1e-3);
    std::printf("%-22s %-12.1f %-14.1f %-12.1f %-8.2f %-8.2f\n", row.name,
                row.vtime, row.peak / kGiB, row.stall, m, mt);
  }
  std::printf("\nmemory saving: greedy %.0f%%, planned %.0f%% "
              "(paper: 42%% / 29%%)\n",
              100.0 * (base_m - rows[1].peak) / base_m,
              100.0 * (base_m - rows[2].peak) / base_m);
  std::printf("performance loss: greedy %.0f%%, planned %.0f%% "
              "(paper: 81.5%% / 21%%)\n",
              100.0 * (rows[1].vtime - base_t) / base_t,
              100.0 * (rows[2].vtime - base_t) / base_t);
  bench::footer(wall.seconds());
  return 0;
}
