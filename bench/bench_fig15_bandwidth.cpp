// Fig 15: interconnect bandwidth utilization between compute nodes and the
// single memory node, as GPU count grows. Paper: near-saturation at ≥12
// GPUs (3 nodes), turning the fabric into the bottleneck.
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  const int passes = int(args.get_i64("--passes", 3));
  WallTimer wall;
  bench::header("Fig 15 — fabric bandwidth utilization vs GPU count",
                "paper Fig 15 (saturation at >=12 GPUs, one memory node)",
                "utilization grows with GPUs toward the peak");

  auto geom = lamino::Geometry::cube(n);
  lamino::Operators ops(geom);
  auto u = lamino::to_complex(lamino::make_phantom(
      geom.object_shape(), lamino::PhantomKind::BrainTissue, 5));
  Array3D<cfloat> dhat(geom.data_shape());
  ops.forward_freq(u, dhat);
  const double s = 1024.0 / double(n);
  const double ws = s * s * s;

  std::printf("%-6s %-10s %s\n", "GPUs", "util (%)", "");
  for (int gpus : {1, 2, 4, 6, 8, 12, 16}) {
    cluster::ClusterSpec spec;
    spec.gpus = gpus;
    // Memoization on: the fabric carries both redistribution and the
    // memoization DB traffic of every node.
    cluster::Cluster c(ops, spec,
                       {.enable = true, .tau = 0.5, .key_dim = 16,
                        .encoder_hw = 16, .work_scale = ws,
                        .oracle_similarity = false},
                       {.key_dim = 16, .tau = 0.5, .value_scale = ws});
    sim::VTime t = 0;
    for (int p = 0; p < passes; ++p)
      t = c.forward_adjoint_pass(u, dhat, 1, t);
    const double util = c.fabric().utilization(t);
    std::printf("%-6d %-10.0f |%s\n", gpus, 100.0 * util,
                ascii_bar(util, 40).c_str());
  }
  std::printf("\nthe single memory node's link saturates as nodes multiply — "
              "the paper's scaling bottleneck.\n");
  bench::footer(wall.seconds());
  return 0;
}
