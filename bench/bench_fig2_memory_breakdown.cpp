// Fig 2: CPU memory consumption and time breakdown of one ADMM iteration.
// Paper (1.5K³): ψ 12 %, λ 12 %, g+g_prev 24 % of ~300 GB; LSP > 67 % of the
// iteration; §2 also reports CPU↔GPU transfer ≈ 47 % of the critical path at
// 1K³ without mLR.
#include "bench_util.hpp"
#include "core/mlr.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 n = args.get_i64("--n", 16);
  WallTimer wall;
  bench::header("Fig 2 — ADMM iteration memory & time breakdown",
                "paper Fig 2 (1.5K^3, ~300 GB; LSP > 67 %)",
                "psi == lambda; g+g_prev ~ 2x psi; LSP dominates");

  // Memory breakdown at paper scale.
  auto ds = Dataset::medium(n);
  auto b = admm_memory_breakdown(ds);
  const double total = b.total();
  std::printf("paper-scale memory breakdown (%s, total %.0f GB):\n",
              ds.label.c_str(), total / kGiB);
  bench::bar_row("psi", 100.0 * b.psi / total, 40, "%");
  bench::bar_row("lambda", 100.0 * b.lambda / total, 40, "%");
  bench::bar_row("g + g_prev", 100.0 * (b.g + b.g_prev) / total, 40, "%");
  bench::bar_row("u (reconstruction)", 100.0 * b.u / total, 40, "%");
  bench::bar_row("d (projections)", 100.0 * b.d / total, 40, "%");
  bench::bar_row("LSP workspaces", 100.0 * b.other / total, 40, "%");

  // Time breakdown of a real (baseline) iteration.
  ReconstructionConfig cfg;
  cfg.threads = args.threads();
  cfg.overlap_slices = args.overlap();
  cfg.pipeline_depth = args.pipeline();
  cfg.dataset = ds;
  cfg.iters = 4;
  cfg.inner_iters = 4;
  cfg.memoize = false;
  cfg.cancellation = false;
  cfg.fusion = false;
  Reconstructor rec(cfg);
  auto rep = rec.run();
  const auto& st = rep.result.iterations[1];  // steady-state iteration
  const double iter_s = st.lsp_s + st.rsp_s + st.lambda_s + st.penalty_s;
  std::printf("\none ADMM iteration time breakdown (virtual seconds):\n");
  bench::bar_row("LSP", st.lsp_s, iter_s, "s");
  bench::bar_row("RSP", st.rsp_s, iter_s, "s");
  bench::bar_row("lambda update", st.lambda_s, iter_s, "s");
  bench::bar_row("penalty update", st.penalty_s, iter_s, "s");
  std::printf("\nLSP share: %.0f%%  (paper: >67%%)\n", 100.0 * st.lsp_s / iter_s);
  std::printf("CPU<->GPU transfer share of critical path (no mLR): %.0f%%  "
              "(paper: ~47%% at 1K^3)\n",
              100.0 * rep.result.transfer_share);
  bench::footer(wall.seconds());
  return 0;
}
