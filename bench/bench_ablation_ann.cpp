// Ablation (§4.3.2): the index-database design choice — cluster-based IVF
// vs graph-based NSW vs exact scan. The paper picks IVF because dynamic
// insertion is cheap; graph insertion costs grow with index size. Also
// checks the quoted query cost scale (0.2 ms at 1M × 60-d on their CPU —
// here measured in distance evaluations and host microseconds).
#include "ann/ann.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace mlr;
  bench::Args args(argc, argv);
  const i64 dim = args.get_i64("--dim", 60);
  const i64 total = args.get_i64("--keys", 4000);
  WallTimer wall;
  bench::header("Ablation — ANN index architecture (IVF vs graph vs exact)",
                "paper §4.3.2 (IVF chosen for cheap dynamic insertion)",
                "IVF insert cost flat in index size; graph insert cost grows");

  Rng rng(3);
  auto vec = [&] {
    std::vector<float> v(static_cast<size_t>(dim));
    for (auto& x : v) x = float(rng.normal());
    return v;
  };

  ann::IvfFlatIndex ivf(dim, {.nlist = 32, .nprobe = 6, .train_size = 256});
  ann::NswIndex nsw(dim, {.m = 8, .ef = 32});
  ann::FlatIndex flat(dim);

  std::printf("insert cost (distance evals per insert) vs index size:\n\n");
  std::printf("%-10s %-10s %-10s %-10s\n", "size", "IVF", "NSW", "flat");
  const i64 checkpoints[4] = {total / 8, total / 4, total / 2, total};
  i64 next = 0;
  for (i64 size : checkpoints) {
    for (; next < size; ++next) {
      auto v = vec();
      ivf.add(u64(next), v);
      nsw.add(u64(next), v);
      flat.add(u64(next), v);
    }
    const u64 i0 = ivf.distance_evals(), n0 = nsw.distance_evals(),
              f0 = flat.distance_evals();
    auto v = vec();
    ivf.add(u64(next), v);
    nsw.add(u64(next), v);
    flat.add(u64(next), v);
    ++next;
    std::printf("%-10lld %-10llu %-10llu %-10llu\n", (long long)size,
                (unsigned long long)(ivf.distance_evals() - i0),
                (unsigned long long)(nsw.distance_evals() - n0),
                (unsigned long long)(flat.distance_evals() - f0));
  }

  // Query cost + recall.
  std::printf("\nquery cost and recall@1 at %lld keys:\n\n", (long long)total);
  std::printf("%-8s %-16s %-12s %-10s\n", "index", "dist evals/query",
              "host us/query", "recall@1");
  for (int which = 0; which < 3; ++which) {
    ann::Index* idx = which == 0 ? (ann::Index*)&ivf
                      : which == 1 ? (ann::Index*)&nsw
                                   : (ann::Index*)&flat;
    const char* name = which == 0 ? "IVF" : which == 1 ? "NSW" : "flat";
    int hit = 0;
    const int queries = 50;
    const u64 d0 = idx->distance_evals();
    WallTimer qt;
    std::vector<std::vector<float>> probes;
    Rng prng(9);
    for (int q = 0; q < queries; ++q) {
      std::vector<float> v(static_cast<size_t>(dim));
      for (auto& x : v) x = float(prng.normal());
      probes.push_back(std::move(v));
    }
    std::vector<std::optional<ann::Neighbor>> got;
    for (const auto& p : probes) got.push_back(idx->nearest(p));
    const double us = qt.seconds() * 1e6 / queries;
    for (int q = 0; q < queries; ++q) {
      auto want = flat.nearest(probes[size_t(q)]);
      if (got[size_t(q)] && want && got[size_t(q)]->id == want->id) ++hit;
    }
    std::printf("%-8s %-16.0f %-12.1f %.2f\n", name,
                double(idx->distance_evals() - d0) / queries, us,
                double(hit) / queries);
  }
  std::printf("\nIVF keeps insertion O(nlist) while the graph index pays a "
              "growing beam search — the paper's §4.3.2 argument.\n");
  bench::footer(wall.seconds());
  return 0;
}
